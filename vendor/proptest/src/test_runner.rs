//! Deterministic case generation and the runner behind the
//! [`proptest!`](crate::proptest) macro.

use crate::strategy::Strategy;

/// Runner configuration. Only the knobs this workspace uses are present.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies: SplitMix64, seeded per test and per case so
/// every failure reproduces exactly across runs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Runs a strategy's cases against a test body.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Create a runner whose seed sequence is derived from the test's name,
    /// so distinct tests see distinct (but stable) inputs.
    pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
        // FNV-1a over the name gives a stable per-test base seed.
        let mut seed = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRunner { config, base_seed: seed }
    }

    /// Run `body` once per generated case. Panics from the body propagate
    /// after the failing case number and seed are printed to stderr (there is
    /// no shrinking in this shim).
    pub fn run<S, F>(&mut self, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        for case in 0..self.config.cases {
            let seed = self.base_seed ^ (case as u64).wrapping_mul(0xA24BAED4963EE407);
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(value)
            }));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest (vendored shim): case {}/{} failed, rng seed {seed:#x} \
                     (no shrinking; rerun reproduces this case deterministically)",
                    case + 1,
                    self.config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}
