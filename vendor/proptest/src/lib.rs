//! Vendored stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this shim reimplements
//! the slice of the proptest API this workspace's differential tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * strategies for integer ranges, tuples of strategies, [`any`], and
//!   [`collection::vec`],
//! * the [`prop_oneof!`] and [`proptest!`] macros,
//! * [`ProptestConfig::with_cases`] and a deterministic [`TestRunner`].
//!
//! Differences from the real crate, deliberately accepted for a hermetic
//! build: **no shrinking** (a failing case reports its seed and full input
//! instead of a minimal one), no persistence files, and case generation uses
//! a fixed per-test seed sequence so failures reproduce exactly across runs.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types with a canonical "anything" strategy. (Subset of `proptest::arbitrary`.)
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types that have a default full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_oneof, proptest};
}

/// Choose uniformly between several strategies with the same value type.
///
/// (The real macro also accepts `weight => strategy` arms; the unweighted
/// form is all this workspace uses.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Define property tests: each `fn name(pattern in strategy) { body }` item
/// becomes a `#[test]` that runs `body` for each generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $arg:pat in $strategy:expr $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = $strategy;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(&strategy, |$arg| $body);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        Put(u64),
        Del(u64),
    }

    fn cmd() -> impl Strategy<Value = Cmd> {
        prop_oneof![
            (1..=16u64).prop_map(Cmd::Put),
            (1..=16u64).prop_map(Cmd::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(cmd(), 1..40)) {
            assert!((1..40).contains(&v.len()));
            for c in &v {
                match *c {
                    Cmd::Put(k) | Cmd::Del(k) => assert!((1..=16).contains(&k)),
                }
            }
        }

        #[test]
        fn tuples_and_any(pair in (1..=9u64, any::<u64>())) {
            assert!((1..=9).contains(&pair.0));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strategy = cmd();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200), "union");
        let mut put = false;
        let mut del = false;
        runner.run(&strategy, |c| match c {
            Cmd::Put(_) => put = true,
            Cmd::Del(_) => del = true,
        });
        assert!(put && del);
    }
}
