//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// maps a deterministic RNG state straight to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (built by [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
