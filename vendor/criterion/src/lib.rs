//! Vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this shim keeps the
//! workspace's bench targets compiling and running with the same source:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! the group knobs (`sample_size`, `measurement_time`, `warm_up_time`) and
//! [`Bencher::iter`]. Instead of criterion's full statistical machinery it
//! runs a warm-up phase followed by timed samples and reports the mean and
//! min/max time per iteration on stdout — enough to compare algorithms by
//! eye, not enough for publication-grade confidence intervals.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per bench target.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmark functions.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            _criterion: self,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to take per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for measurement of each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before measurement of each benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm up: run the routine until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            f(&mut bencher);
        }
        // Measure: `sample_size` samples within the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let sample_deadline = Instant::now() + budget_per_sample;
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            while Instant::now() < sample_deadline {
                f(&mut b);
            }
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{}/{id}: no samples (routine never ran)", self.name);
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{id}: {:>12.1} ns/iter (min {:.1}, max {:.1}, {} samples)",
            self.name,
            mean,
            min,
            max,
            samples.len()
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; times calls to [`iter`](Bencher::iter).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine`, accumulating into the current sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function `$name` that runs each `$target` against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
