//! # loom-shim — offline bounded model checking for the PathCAS workspace
//!
//! A vendored, dependency-free stand-in for [loom](https://github.com/tokio-rs/loom)
//! exposing the subset this workspace uses: mock atomics
//! ([`sync::atomic`]), model-aware threads ([`thread`]), and a
//! [`model`] entry point that runs a closure under **every** thread
//! interleaving and weak-memory read choice up to a preemption bound and a
//! staleness bound.
//!
//! ```
//! use loom_shim::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! loom_shim::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom_shim::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! **What "pass" means.** [`model`] panics iff *some* explored execution
//! panics (assertion failure, deadlock, runaway loop); otherwise every
//! execution within the bounds upheld the model's assertions. The bounds
//! (defaults: 2 preemptions, 3 stale reads) make the guarantee
//! *bounded*-exhaustive — the standard context-bounding result is that
//! almost all real concurrency bugs manifest within 2 preemptions.
//!
//! **Non-vacuity.** [`model_fails`] runs a model expecting failure and
//! returns whether one was found; the workspace's mutation witnesses use it
//! to prove the checker actually distinguishes correct orderings from
//! broken ones.

mod atomic;
mod clock;
mod rt;
pub mod thread;

use std::time::Duration;

pub use rt::Outcome;

/// The calling thread's model-thread index (0 = the thread that called
/// [`model`]), or `None` outside an execution. Facade-covered code can use
/// this for *deterministic* per-thread choices (e.g. counter stripe
/// assignment) that would otherwise vary between executions and break DFS
/// replay.
pub fn current_thread_id() -> Option<usize> {
    rt::current_tid()
}

/// `loom::sync`-shaped facade: `sync::atomic::{AtomicU64, Ordering, fence, ...}`.
pub mod sync {
    pub mod atomic {
        pub use crate::atomic::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

/// Exploration configuration. `Default` matches [`model`].
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Max context switches at points where the running thread is still
    /// runnable. `None` = unbounded (full DFS; feasible only for tiny models).
    pub preemption_bound: Option<usize>,
    /// Max non-latest load choices per execution — the weak-memory analogue
    /// of the preemption bound (see `rt` docs).
    pub staleness_bound: u32,
    /// Per-execution visible-op limit; tripping it fails the model (an
    /// unbounded helping/spin loop is a liveness bug at model scale).
    pub max_ops: usize,
    /// Total-execution and wall-clock guards for CI.
    pub max_iterations: u64,
    pub max_duration: Duration,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            staleness_bound: 3,
            max_ops: 20_000,
            max_iterations: 4_000_000,
            max_duration: Duration::from_secs(120),
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    fn config(&self) -> rt::Config {
        rt::Config {
            preemption_bound: self.preemption_bound,
            staleness_bound: self.staleness_bound,
            max_ops: self.max_ops,
            max_iterations: self.max_iterations,
            max_duration: self.max_duration,
        }
    }

    /// Explore `f` exhaustively within the bounds; panic on the first
    /// failing execution with its diagnostic.
    pub fn check<F: Fn()>(&self, f: F) {
        match rt::run(self.config(), &f) {
            Outcome::Pass { .. } => {}
            Outcome::Fail {
                iterations,
                message,
            } => panic!("loom-shim: model failed on execution {iterations}: {message}"),
        }
    }

    /// Like [`Self::check`] but returns the outcome instead of panicking —
    /// for mutation witnesses that assert a weakened model *does* fail.
    pub fn check_outcome<F: Fn()>(&self, f: F) -> Outcome {
        rt::run(self.config(), &f)
    }
}

/// Explore `f` under the default [`Builder`]; panics if any bounded
/// execution fails.
pub fn model<F: Fn()>(f: F) {
    Builder::default().check(f)
}

/// Returns true iff the checker finds a failing execution of `f` within the
/// default bounds. Mutation witnesses assert this is `true` for the
/// deliberately weakened copies of verified code.
pub fn model_fails<F: Fn()>(f: F) -> bool {
    matches!(
        Builder::default().check_outcome(f),
        Outcome::Fail { .. }
    )
}
