//! Mock atomic types. Each mock wraps a real std atomic as its *backing*
//! store: outside a model execution every operation passes straight through
//! (so facade-covered code keeps working in binaries that merely link the
//! shim), while inside an execution the runtime tracks the full store
//! history and the backing only mirrors the modification-order-latest value.
//!
//! The mock's *address* identifies the location to the runtime, so mocks
//! must not be moved while a model is running (statics and stack slots owned
//! for the closure's duration are both fine — the usual loom rules).

use std::sync::atomic::Ordering;

use crate::rt;

macro_rules! int_atomic {
    ($name:ident, $prim:ty, $std:ty) => {
        /// Mock atomic integer; see the module docs for passthrough rules.
        #[derive(Debug, Default)]
        pub struct $name {
            backing: $std,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                Self {
                    backing: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            fn seed(&self) -> u64 {
                self.backing.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                if rt::current_tid().is_none() {
                    return self.backing.load(ord);
                }
                rt::atomic_load(self.addr(), self.seed(), ord) as $prim
            }

            pub fn store(&self, val: $prim, ord: Ordering) {
                if rt::current_tid().is_none() {
                    self.backing.store(val, ord);
                    return;
                }
                rt::atomic_store(self.addr(), self.seed(), val as u64, ord);
                self.backing.store(val, Ordering::Relaxed);
            }

            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                if rt::current_tid().is_none() {
                    return self.backing.swap(val, ord);
                }
                let (prev, _) = rt::atomic_rmw(self.addr(), self.seed(), ord, ord, |_| {
                    Some(val as u64)
                });
                self.backing.store(val, Ordering::Relaxed);
                prev as $prim
            }

            pub fn compare_exchange(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if rt::current_tid().is_none() {
                    return self.backing.compare_exchange(expected, new, success, failure);
                }
                let (prev, stored) =
                    rt::atomic_rmw(self.addr(), self.seed(), success, failure, |cur| {
                        if cur as $prim == expected {
                            Some(new as u64)
                        } else {
                            None
                        }
                    });
                if stored {
                    self.backing.store(new, Ordering::Relaxed);
                    Ok(prev as $prim)
                } else {
                    Err(prev as $prim)
                }
            }

            /// The mock never fails spuriously; weak == strong here, which
            /// only shrinks the schedule tree (a retry loop around a
            /// spurious failure adds no new memory behaviors).
            pub fn compare_exchange_weak(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(expected, new, success, failure)
            }

            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                if rt::current_tid().is_none() {
                    return self.backing.fetch_add(val, ord);
                }
                let mut newv: $prim = 0;
                let (prev, _) = rt::atomic_rmw(self.addr(), self.seed(), ord, ord, |cur| {
                    newv = (cur as $prim).wrapping_add(val);
                    Some(newv as u64)
                });
                self.backing.store(newv, Ordering::Relaxed);
                prev as $prim
            }

            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                self.fetch_add(<$prim>::wrapping_sub(0, val), ord)
            }

            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                if rt::current_tid().is_none() {
                    return self.backing.fetch_max(val, ord);
                }
                let mut newv: $prim = 0;
                let (prev, _) = rt::atomic_rmw(self.addr(), self.seed(), ord, ord, |cur| {
                    newv = (cur as $prim).max(val);
                    Some(newv as u64)
                });
                self.backing.store(newv, Ordering::Relaxed);
                prev as $prim
            }

            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                if rt::current_tid().is_none() {
                    return self.backing.fetch_or(val, ord);
                }
                let mut newv: $prim = 0;
                let (prev, _) = rt::atomic_rmw(self.addr(), self.seed(), ord, ord, |cur| {
                    newv = (cur as $prim) | val;
                    Some(newv as u64)
                });
                self.backing.store(newv, Ordering::Relaxed);
                prev as $prim
            }

            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                if rt::current_tid().is_none() {
                    return self.backing.fetch_update(set_order, fetch_order, f);
                }
                let mut newv: Option<$prim> = None;
                let (prev, stored) =
                    rt::atomic_rmw(self.addr(), self.seed(), set_order, fetch_order, |cur| {
                        newv = f(cur as $prim);
                        newv.map(|n| n as u64)
                    });
                if stored {
                    self.backing.store(newv.unwrap(), Ordering::Relaxed);
                    Ok(prev as $prim)
                } else {
                    Err(prev as $prim)
                }
            }

            pub fn into_inner(self) -> $prim {
                self.backing.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.backing.get_mut()
            }
        }
    };
}

int_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
int_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
int_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);

/// Mock atomic bool over the same runtime (values 0/1).
#[derive(Debug, Default)]
pub struct AtomicBool {
    backing: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            backing: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn seed(&self) -> u64 {
        self.backing.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        if rt::current_tid().is_none() {
            return self.backing.load(ord);
        }
        rt::atomic_load(self.addr(), self.seed(), ord) != 0
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        if rt::current_tid().is_none() {
            self.backing.store(val, ord);
            return;
        }
        rt::atomic_store(self.addr(), self.seed(), val as u64, ord);
        self.backing.store(val, Ordering::Relaxed);
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        if rt::current_tid().is_none() {
            return self.backing.swap(val, ord);
        }
        let (prev, _) = rt::atomic_rmw(self.addr(), self.seed(), ord, ord, |_| Some(val as u64));
        self.backing.store(val, Ordering::Relaxed);
        prev != 0
    }
}

/// Mock atomic pointer; modeled as a u64-valued location holding the address.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    backing: std::sync::atomic::AtomicPtr<T>,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            backing: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn seed(&self) -> u64 {
        self.backing.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        if rt::current_tid().is_none() {
            return self.backing.load(ord);
        }
        rt::atomic_load(self.addr(), self.seed(), ord) as *mut T
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        if rt::current_tid().is_none() {
            self.backing.store(p, ord);
            return;
        }
        rt::atomic_store(self.addr(), self.seed(), p as u64, ord);
        self.backing.store(p, Ordering::Relaxed);
    }

    pub fn compare_exchange(
        &self,
        expected: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if rt::current_tid().is_none() {
            return self.backing.compare_exchange(expected, new, success, failure);
        }
        let (prev, stored) = rt::atomic_rmw(self.addr(), self.seed(), success, failure, |cur| {
            if cur == expected as u64 {
                Some(new as u64)
            } else {
                None
            }
        });
        if stored {
            self.backing.store(new, Ordering::Relaxed);
            Ok(prev as *mut T)
        } else {
            Err(prev as *mut T)
        }
    }
}

/// Model-aware `std::sync::atomic::fence`.
pub fn fence(ord: Ordering) {
    rt::fence(ord);
}
