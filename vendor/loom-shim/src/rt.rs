//! The model-checking runtime: a cooperative token-passing scheduler over
//! real OS threads, a vector-clock release/acquire/fence memory model with
//! per-location modification orders, and a DFS over every branch point
//! (schedule choices and weak-memory load choices).
//!
//! # How an execution runs
//!
//! [`run`] executes the model closure repeatedly. Within one execution,
//! exactly one model thread holds the "token" at a time; every visible
//! operation (atomic op, fence, spawn, join, yield) is a *boundary* where the
//! scheduler consults the current DFS path to decide which runnable thread
//! proceeds next. Between boundaries a thread runs arbitrary invisible code.
//! After each execution the last not-yet-exhausted branch point is advanced
//! (classic iterative-DFS path replay) until the whole bounded tree is
//! explored.
//!
//! # Memory model
//!
//! Each atomic location carries its full store history (the C11 modification
//! order — mock atomics in this workspace are only ever written through the
//! facade, so the history is complete). A load may read any store that is
//! not excluded by:
//!
//! * **happens-before**: stores older (in modification order) than the
//!   newest store that happens-before the reading thread are invisible;
//! * **coherence**: a thread never reads modification-order-older than what
//!   it last read or wrote at that location;
//! * **the staleness bound**: each execution may take at most
//!   `staleness_bound` non-latest load choices in total. This is the
//!   weak-memory analogue of the preemption bound: it keeps the DFS finite
//!   in the presence of helping loops and prunes the eligible-store
//!   branching to the small number of stale reads real bugs need.
//!
//! Release/acquire edges are vector-clock joins through each store's `sync`
//! clock; release sequences are modeled by RMWs joining the clock of the
//! store they overwrite; fences use the usual pending-acquire /
//! release-snapshot construction. `SeqCst` is approximated by a single
//! global clock joined on both sides of every SeqCst access — slightly
//! *stronger* than C11 SC (it orders SeqCst ops with non-SeqCst ones more
//! than the standard requires), which is sound for finding schedule-level
//! bugs but means a missing-`SeqCst` mutation may need a fence-level rather
//! than clock-level witness. DESIGN.md §12 discusses the tradeoff.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::clock::{VClock, MAX_THREADS};

/// Marker payload unwound through model threads when an execution aborts
/// (failure found elsewhere, or teardown). Caught by the per-thread wrapper;
/// never escapes the checker.
struct Abort;

const INITIAL_STORE: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BranchKind {
    Schedule,
    Load,
}

#[derive(Clone, Copy)]
struct Branch {
    chosen: u32,
    max: u32,
    kind: BranchKind,
}

struct ThreadState {
    status: Status,
    /// Everything this thread has acquired (its happens-before past).
    clock: VClock,
    /// Snapshot published by the latest release fence; release-less stores
    /// after a release fence carry this as their sync clock.
    fence_rel: VClock,
    /// Join of the sync clocks of everything read so far; an acquire fence
    /// folds this into `clock`.
    fence_acq: VClock,
    /// Per-location coherence floor: modification-order index of the newest
    /// store this thread has read or written there.
    last_seen: HashMap<usize, usize>,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            clock,
            fence_rel: VClock::zero(),
            fence_acq: VClock::zero(),
            last_seen: HashMap::new(),
            joiners: Vec::new(),
        }
    }
}

struct StoreRec {
    val: u64,
    /// Clock a reader acquires by reading this store.
    sync: VClock,
    /// The writer's clock at the store (for happens-before visibility).
    when: VClock,
    /// Writing thread, or `INITIAL_STORE`.
    by: usize,
}

struct Location {
    stores: Vec<StoreRec>,
}

/// Per-execution + DFS state. Guarded by the single runtime mutex.
struct Exec {
    active: bool,
    threads: Vec<ThreadState>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    locs: HashMap<usize, Location>,
    /// Global SeqCst order approximation.
    sc: VClock,
    current: usize,
    preemptions: usize,
    stale_budget: u32,
    ops: usize,
    /// DFS path: one entry per branch point, in execution order.
    path: Vec<Branch>,
    pos: usize,
    failure: Option<String>,
    aborting: bool,
    // Config (copied from the Builder at run start).
    preemption_bound: Option<usize>,
    staleness_bound: u32,
    max_ops: usize,
}

impl Exec {
    fn empty() -> Self {
        Exec {
            active: false,
            threads: Vec::new(),
            os_handles: Vec::new(),
            locs: HashMap::new(),
            sc: VClock::zero(),
            current: 0,
            preemptions: 0,
            stale_budget: 0,
            ops: 0,
            path: Vec::new(),
            pos: 0,
            failure: None,
            aborting: false,
            preemption_bound: None,
            staleness_bound: 0,
            max_ops: 0,
        }
    }

    fn begin_execution(&mut self) {
        self.threads.clear();
        self.threads.push(ThreadState::new(VClock::zero()));
        self.locs.clear();
        self.sc = VClock::zero();
        self.current = 0;
        self.preemptions = 0;
        self.stale_budget = self.staleness_bound;
        self.ops = 0;
        self.pos = 0;
        self.aborting = false;
        self.active = true;
    }

    /// Advance to the next DFS path: bump the deepest non-exhausted branch,
    /// truncate everything after it. Returns false when the tree is done.
    fn next_path(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.chosen + 1 < last.max {
                last.chosen += 1;
                return true;
            }
            self.path.pop();
        }
        false
    }
}

struct Rt {
    m: Mutex<Exec>,
    cv: Condvar,
}

fn rt() -> &'static Rt {
    static RT: OnceLock<Rt> = OnceLock::new();
    RT.get_or_init(|| Rt {
        m: Mutex::new(Exec::empty()),
        cv: Condvar::new(),
    })
}

/// Serializes whole `model()` calls so parallel `cargo test` threads don't
/// interleave their explorations through the shared runtime.
fn model_lock() -> &'static Mutex<()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
}

thread_local! {
    static CUR: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The calling thread's model-thread id, if it is currently participating in
/// an execution. `None` means atomics fall through to their std backing.
pub fn current_tid() -> Option<usize> {
    CUR.with(|c| c.get())
}

fn lock() -> MutexGuard<'static, Exec> {
    rt().m.lock().unwrap_or_else(|e| e.into_inner())
}

fn abort_unwind() -> ! {
    panic::resume_unwind(Box::new(Abort))
}

/// Record a failure, wake every parked thread so it can unwind, and leave
/// the guard released. Caller decides whether to unwind itself.
fn fail(g: &mut MutexGuard<'_, Exec>, msg: String) {
    if g.failure.is_none() {
        g.failure = Some(msg);
    }
    g.aborting = true;
    rt().cv.notify_all();
}

fn describe_panic(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Consult the DFS path at a branch point with `max` options; returns the
/// option index to take this execution.
fn branch_choice(g: &mut MutexGuard<'_, Exec>, max: usize, kind: BranchKind) -> usize {
    if max <= 1 {
        return 0;
    }
    let pos = g.pos;
    if pos < g.path.len() {
        let b = g.path[pos];
        if b.max as usize != max || b.kind != kind {
            fail(
                g,
                format!(
                    "non-deterministic model: branch {pos} was {:?}x{} on a prior \
                     execution but is {kind:?}x{max} now; model closures must perform \
                     an identical sequence of facade operations on every run",
                    b.kind, b.max
                ),
            );
            abort_unwind();
        }
    } else {
        g.path.push(Branch {
            chosen: 0,
            max: max as u32,
            kind,
        });
    }
    let c = g.path[pos].chosen as usize;
    g.pos += 1;
    c
}

fn runnable_ids(g: &Exec) -> Vec<usize> {
    g.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect()
}

/// Pick the next thread to run from `options` (current thread first, so DFS
/// choice 0 = "keep running" and preemptions are only counted when taken),
/// hand over the token, and if the choice was someone else, park until the
/// token returns.
fn hand_off_and_wait(mut g: MutexGuard<'_, Exec>, me: usize, options: Vec<usize>) {
    let next = options[branch_choice(&mut g, options.len(), BranchKind::Schedule)];
    if next != me {
        if g.threads[me].status == Status::Runnable {
            g.preemptions += 1;
        }
        g.current = next;
        rt().cv.notify_all();
        while g.current != me && !g.aborting {
            g = rt().cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            drop(g);
            abort_unwind();
        }
    }
}

/// Every visible operation starts here: count the op, then offer the
/// scheduler a chance to preempt (unless the preemption budget is spent).
fn boundary() {
    let me = match current_tid() {
        Some(t) => t,
        None => return,
    };
    let mut g = lock();
    if !g.active {
        return;
    }
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    g.ops += 1;
    if g.ops > g.max_ops {
        let max = g.max_ops;
        fail(
            &mut g,
            format!(
                "execution exceeded {max} visible operations — unbounded loop in the \
                 model (or raise Builder::max_ops)"
            ),
        );
        drop(g);
        abort_unwind();
    }
    let runnable = runnable_ids(&g);
    debug_assert!(runnable.contains(&me), "boundary on non-runnable thread");
    let bound_spent = g
        .preemption_bound
        .map(|b| g.preemptions >= b)
        .unwrap_or(false);
    if bound_spent || runnable.len() == 1 {
        return;
    }
    let mut options = Vec::with_capacity(runnable.len());
    options.push(me);
    options.extend(runnable.into_iter().filter(|&t| t != me));
    hand_off_and_wait(g, me, options);
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ensure_loc(g: &mut MutexGuard<'_, Exec>, addr: usize, seed: u64) {
    g.locs.entry(addr).or_insert_with(|| Location {
        stores: vec![StoreRec {
            val: seed,
            sync: VClock::zero(),
            when: VClock::zero(),
            by: INITIAL_STORE,
        }],
    });
}

/// True if `s` happens-before a thread whose acquired clock is `clock`.
fn store_hb(s: &StoreRec, clock: &VClock) -> bool {
    s.by == INITIAL_STORE || s.when.get(s.by) <= clock.get(s.by)
}

/// Modification-order index of the newest store that happens-before the
/// reader: everything older is invisible.
fn hb_floor(loc: &Location, clock: &VClock) -> usize {
    loc.stores
        .iter()
        .enumerate()
        .rev()
        .find(|(_, s)| store_hb(s, clock))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Model an atomic load. `seed` is the location's value before the first
/// tracked store (read lazily from the mock's std backing).
pub fn atomic_load(addr: usize, seed: u64, ord: Ordering) -> u64 {
    let me = current_tid().expect("atomic_load outside a model execution");
    boundary();
    let mut g = lock();
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    ensure_loc(&mut g, addr, seed);
    if ord == Ordering::SeqCst {
        let sc = g.sc;
        g.threads[me].clock.join(&sc);
    }
    let (lo, latest) = {
        let clock = g.threads[me].clock;
        let loc = &g.locs[&addr];
        let floor = hb_floor(loc, &clock);
        let seen = g.threads[me].last_seen.get(&addr).copied().unwrap_or(0);
        (floor.max(seen), loc.stores.len() - 1)
    };
    // Newest-first so DFS choice 0 is the modification-order-latest store;
    // stale alternatives only exist while the staleness budget lasts.
    let options: Vec<usize> = if g.stale_budget > 0 {
        (lo..=latest).rev().collect()
    } else {
        vec![latest]
    };
    let k = branch_choice(&mut g, options.len(), BranchKind::Load);
    let idx = options[k];
    if idx != latest {
        g.stale_budget -= 1;
    }
    let (val, sync) = {
        let s = &g.locs[&addr].stores[idx];
        (s.val, s.sync)
    };
    let th = &mut g.threads[me];
    th.fence_acq.join(&sync);
    if is_acquire(ord) {
        th.clock.join(&sync);
    }
    th.last_seen.insert(addr, idx);
    if ord == Ordering::SeqCst {
        let c = g.threads[me].clock;
        g.sc.join(&c);
    }
    val
}

/// Model an atomic store.
pub fn atomic_store(addr: usize, seed: u64, val: u64, ord: Ordering) {
    let me = current_tid().expect("atomic_store outside a model execution");
    boundary();
    let mut g = lock();
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    ensure_loc(&mut g, addr, seed);
    if ord == Ordering::SeqCst {
        let sc = g.sc;
        g.threads[me].clock.join(&sc);
    }
    g.threads[me].clock.inc(me);
    let th = &g.threads[me];
    let sync = if is_release(ord) { th.clock } else { th.fence_rel };
    let when = th.clock;
    let loc = g.locs.get_mut(&addr).unwrap();
    loc.stores.push(StoreRec {
        val,
        sync,
        when,
        by: me,
    });
    let latest = loc.stores.len() - 1;
    g.threads[me].last_seen.insert(addr, latest);
    if ord == Ordering::SeqCst {
        let c = g.threads[me].clock;
        g.sc.join(&c);
    }
}

/// Model a read-modify-write. `f` sees the modification-order-latest value
/// (RMWs never read stale) and returns `Some(new)` to commit or `None` to
/// fail (the compare_exchange miss case). Returns `(previous, committed)`.
/// `failure` ordering applies to the read when `f` declines.
pub fn atomic_rmw(
    addr: usize,
    seed: u64,
    success: Ordering,
    failure: Ordering,
    f: impl FnOnce(u64) -> Option<u64>,
) -> (u64, bool) {
    let me = current_tid().expect("atomic_rmw outside a model execution");
    boundary();
    let mut g = lock();
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    ensure_loc(&mut g, addr, seed);
    if success == Ordering::SeqCst || failure == Ordering::SeqCst {
        let sc = g.sc;
        g.threads[me].clock.join(&sc);
    }
    let latest = g.locs[&addr].stores.len() - 1;
    let (prev, prev_sync) = {
        let s = &g.locs[&addr].stores[latest];
        (s.val, s.sync)
    };
    match f(prev) {
        Some(new) => {
            {
                let th = &mut g.threads[me];
                th.fence_acq.join(&prev_sync);
                if is_acquire(success) {
                    th.clock.join(&prev_sync);
                }
                th.clock.inc(me);
            }
            let th = &g.threads[me];
            // Release-sequence continuation: the RMW's store carries the
            // overwritten store's sync clock forward even when the RMW
            // itself is not a release.
            let mut sync = if is_release(success) {
                th.clock
            } else {
                th.fence_rel
            };
            sync.join(&prev_sync);
            let when = th.clock;
            let loc = g.locs.get_mut(&addr).unwrap();
            loc.stores.push(StoreRec {
                val: new,
                sync,
                when,
                by: me,
            });
            let newest = loc.stores.len() - 1;
            g.threads[me].last_seen.insert(addr, newest);
            if success == Ordering::SeqCst {
                let c = g.threads[me].clock;
                g.sc.join(&c);
            }
            (prev, true)
        }
        None => {
            let th = &mut g.threads[me];
            th.fence_acq.join(&prev_sync);
            if is_acquire(failure) {
                th.clock.join(&prev_sync);
            }
            th.last_seen.insert(addr, latest);
            if failure == Ordering::SeqCst {
                let c = g.threads[me].clock;
                g.sc.join(&c);
            }
            (prev, false)
        }
    }
}

/// Model `std::sync::atomic::fence`.
pub fn fence(ord: Ordering) {
    let me = match current_tid() {
        Some(t) => t,
        None => {
            std::sync::atomic::fence(ord);
            return;
        }
    };
    boundary();
    let mut g = lock();
    if !g.active {
        return;
    }
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    if is_acquire(ord) {
        let pending = g.threads[me].fence_acq;
        g.threads[me].clock.join(&pending);
    }
    if ord == Ordering::SeqCst {
        let sc = g.sc;
        g.threads[me].clock.join(&sc);
    }
    if is_release(ord) {
        g.threads[me].fence_rel = g.threads[me].clock;
    }
    if ord == Ordering::SeqCst {
        let c = g.threads[me].clock;
        g.sc.join(&c);
    }
}

/// A pure scheduling point with no memory effect.
pub fn yield_now() {
    if current_tid().is_some() {
        boundary();
    } else {
        std::thread::yield_now();
    }
}

/// Register a child model thread (inheriting the parent's clock for the
/// spawn happens-before edge) and return its tid. The OS thread is created
/// by the caller; until it first parks it simply hasn't reached a boundary.
pub fn register_thread() -> usize {
    let me = current_tid().expect("spawn outside a model execution");
    let mut g = lock();
    let tid = g.threads.len();
    if tid >= MAX_THREADS {
        fail(
            &mut g,
            format!("model spawned more than {MAX_THREADS} threads (MAX_THREADS)"),
        );
        drop(g);
        abort_unwind();
    }
    g.threads[me].clock.inc(me);
    let clock = g.threads[me].clock;
    g.threads.push(ThreadState::new(clock));
    tid
}

pub fn store_os_handle(h: std::thread::JoinHandle<()>) {
    lock().os_handles.push(h);
}

/// Spawn is itself a schedule point, so the child can run immediately.
pub fn post_spawn_boundary() {
    boundary();
}

/// Body run on each child OS thread. Parks until first granted the token,
/// runs `f`, then hands the token on. All panics are contained here.
pub fn child_main(tid: usize, f: impl FnOnce()) {
    CUR.with(|c| c.set(Some(tid)));
    {
        let mut g = lock();
        while g.current != tid && !g.aborting {
            g = rt().cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            // Execution died before we ever ran; just bow out.
            g.threads[tid].status = Status::Finished;
            return;
        }
    }
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    match r {
        Ok(()) => thread_finished(tid),
        Err(p) => {
            if p.downcast_ref::<Abort>().is_some() {
                let mut g = lock();
                g.threads[tid].status = Status::Finished;
            } else {
                let mut g = lock();
                g.threads[tid].status = Status::Finished;
                fail(&mut g, describe_panic(p.as_ref()));
            }
        }
    }
    CUR.with(|c| c.set(None));
}

/// Normal completion of a child thread: wake joiners and pass the token.
fn thread_finished(tid: usize) {
    let mut g = lock();
    g.threads[tid].status = Status::Finished;
    let joiners = std::mem::take(&mut g.threads[tid].joiners);
    for j in joiners {
        g.threads[j].status = Status::Runnable;
    }
    if g.aborting {
        rt().cv.notify_all();
        return;
    }
    let runnable = runnable_ids(&g);
    if runnable.is_empty() {
        if g.threads.iter().any(|t| t.status == Status::Blocked) {
            fail(
                &mut g,
                "deadlock: every live thread is blocked in join".to_string(),
            );
        }
        return;
    }
    let next = runnable[branch_choice(&mut g, runnable.len(), BranchKind::Schedule)];
    g.current = next;
    rt().cv.notify_all();
}

/// Block until `target` finishes, then absorb its clock (join edge).
pub fn join_wait(target: usize) {
    let me = current_tid().expect("join outside a model execution");
    let mut g = lock();
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    if g.threads[target].status != Status::Finished {
        g.threads[target].joiners.push(me);
        g.threads[me].status = Status::Blocked;
        let runnable = runnable_ids(&g);
        if runnable.is_empty() {
            fail(
                &mut g,
                "deadlock: join with no runnable thread to finish the target".to_string(),
            );
            drop(g);
            abort_unwind();
        }
        let next = runnable[branch_choice(&mut g, runnable.len(), BranchKind::Schedule)];
        g.current = next;
        rt().cv.notify_all();
        while g.current != me && !g.aborting {
            g = rt().cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            drop(g);
            abort_unwind();
        }
    }
    let tclock = g.threads[target].clock;
    g.threads[me].clock.join(&tclock);
}

/// Outcome of a full bounded exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every explored execution upheld the model's assertions.
    Pass { iterations: u64 },
    /// Some execution failed; exploration stopped at the first failure.
    Fail { iterations: u64, message: String },
}

#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub preemption_bound: Option<usize>,
    pub staleness_bound: u32,
    pub max_ops: usize,
    pub max_iterations: u64,
    pub max_duration: Duration,
}

/// Explore every bounded execution of `f`. Serialized globally; the calling
/// thread participates as model thread 0.
pub fn run(cfg: Config, f: &dyn Fn()) -> Outcome {
    let _serial = model_lock().lock().unwrap_or_else(|e| e.into_inner());
    let start = Instant::now();
    {
        let mut g = lock();
        *g = Exec::empty();
        g.preemption_bound = cfg.preemption_bound;
        g.staleness_bound = cfg.staleness_bound;
        g.max_ops = cfg.max_ops;
    }
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        lock().begin_execution();
        CUR.with(|c| c.set(Some(0)));
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        CUR.with(|c| c.set(None));
        match r {
            Ok(()) => {
                let mut g = lock();
                if !g.aborting
                    && g.threads[1..]
                        .iter()
                        .any(|t| t.status != Status::Finished)
                {
                    fail(
                        &mut g,
                        "model closure returned while spawned threads were still \
                         live; every loom_shim::thread::spawn must be joined"
                            .to_string(),
                    );
                }
            }
            Err(p) => {
                if p.downcast_ref::<Abort>().is_none() {
                    let mut g = lock();
                    fail(&mut g, describe_panic(p.as_ref()));
                }
            }
        }
        // Teardown barrier: wake stragglers, then join every OS thread so
        // the next execution starts from a quiescent runtime.
        let handles = {
            let mut g = lock();
            if g.failure.is_some() {
                g.aborting = true;
            }
            rt().cv.notify_all();
            std::mem::take(&mut g.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut g = lock();
        if let Some(msg) = g.failure.take() {
            g.active = false;
            return Outcome::Fail {
                iterations,
                message: msg,
            };
        }
        if !g.next_path() {
            g.active = false;
            return Outcome::Pass { iterations };
        }
        drop(g);
        if iterations >= cfg.max_iterations {
            panic!(
                "loom-shim: exploration exceeded {} executions without finishing; \
                 shrink the model or raise Builder::max_iterations",
                cfg.max_iterations
            );
        }
        if start.elapsed() > cfg.max_duration {
            panic!(
                "loom-shim: exploration exceeded {:?} without finishing ({} executions); \
                 shrink the model or raise Builder::max_duration",
                cfg.max_duration, iterations
            );
        }
    }
}
