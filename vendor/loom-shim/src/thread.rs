//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Spawn creates a real OS thread that registers with the runtime and parks
//! until the scheduler first grants it the token; join blocks in the
//! scheduler (not the OS) so blocking is itself a schedule point. The OS
//! thread is joined by the runtime at execution teardown.

use std::sync::{Arc, Mutex};

use crate::rt;

pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait (in the model scheduler) for the thread to finish and take its
    /// result. Unlike std this returns `T`, not `Result<T, _>`: a panicking
    /// model thread fails the whole execution before join can observe it.
    pub fn join(self) -> T {
        rt::join_wait(self.tid);
        let slot = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match slot {
            Some(v) => v,
            // Unreachable outside runtime bugs: join_wait only returns once
            // the child stored its result and marked itself finished.
            None => panic!("loom-shim: joined thread finished without a result"),
        }
    }
}

/// Spawn a model thread. Must be called from inside `model()`; the spawn is
/// a schedule point, so the child may run immediately or at any later
/// boundary.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = rt::register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name(format!("loom-shim-{tid}"))
        .spawn(move || {
            rt::child_main(tid, move || {
                let v = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            });
        })
        .expect("loom-shim: OS thread spawn failed");
    rt::store_os_handle(os);
    rt::post_spawn_boundary();
    JoinHandle { tid, result }
}

/// A pure schedule point (no memory effect). Outside a model this is
/// `std::thread::yield_now`.
pub fn yield_now() {
    rt::yield_now();
}
