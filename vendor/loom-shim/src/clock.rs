//! Fixed-size vector clocks.
//!
//! Every happens-before fact the checker tracks is a vector clock: one
//! logical-time component per model thread. Keeping the representation a
//! plain `Copy` array (rather than a growable map) makes joins branch-free
//! and lets the runtime clone clocks into store records without allocating.

/// Maximum number of model threads per execution (including the thread that
/// called [`crate::model`], which participates as thread 0). Model suites in
/// this workspace use 2–4 threads; the bound exists so clocks can be flat
/// arrays.
pub const MAX_THREADS: usize = 4;

/// A vector clock over at most [`MAX_THREADS`] threads.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VClock([u64; MAX_THREADS]);

impl VClock {
    /// The all-zero clock: happens-before everything.
    pub const fn zero() -> Self {
        VClock([0; MAX_THREADS])
    }

    /// Component-wise maximum, in place.
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            if other.0[i] > self.0[i] {
                self.0[i] = other.0[i];
            }
        }
    }

    /// Advance this thread's own component by one tick.
    pub fn inc(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// This clock's knowledge of `tid`'s local time.
    pub fn get(&self, tid: usize) -> u64 {
        self.0[tid]
    }
}
