//! Litmus tests for the checker itself: classic weak-memory shapes where
//! the correct ordering must verify and the broken one must produce a
//! counterexample. If any of these flip, the model suites in the workspace
//! prove nothing — this file is the checker's own mutation witness.

use std::sync::Arc;

use loom_shim::sync::atomic::{fence, AtomicU64, Ordering};
use loom_shim::{model, model_fails, Builder};

/// Message passing with Relaxed only: the reader may see the flag without
/// the data. The checker must find that execution.
#[test]
fn mp_relaxed_fails() {
    assert!(model_fails(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom_shim::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "torn message passing");
        }
        t.join();
    }));
}

/// Same shape with Release/Acquire: must verify.
#[test]
fn mp_release_acquire_passes() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom_shim::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
}

/// Same shape synchronized through fences instead of op orderings — this is
/// the exact protocol the fixed flight-recorder seqlock relies on.
#[test]
fn mp_fences_pass() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom_shim::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
}

/// Non-atomic increment (load; store) races: increments can be lost.
#[test]
fn lost_update_fails() {
    assert!(model_fails(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = loom_shim::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    }));
}

/// fetch_add never loses increments, even Relaxed.
#[test]
fn fetch_add_passes() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = loom_shim::thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// Store buffering: with SeqCst both threads cannot read 0.
#[test]
fn store_buffering_seqcst_passes() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom_shim::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r1 = x.load(Ordering::SeqCst);
        let r2 = t.join();
        assert!(
            !(r1 == 0 && r2 == 0),
            "store buffering observed under SeqCst"
        );
    });
}

/// CAS success is unique: two threads CASing 0->1 cannot both win.
#[test]
fn cas_unique_winner() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = loom_shim::thread::spawn(move || {
            n2.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        });
        let me = n
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        let them = t.join();
        assert!(me != them, "CAS must have exactly one winner");
    });
}

/// Release sequence through an RMW: W(data); W_rel(flag=1); other thread
/// RMWs flag (Relaxed); reader acquiring the RMW's store still sees data.
#[test]
fn release_sequence_through_rmw() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
        let w = loom_shim::thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        let m = loom_shim::thread::spawn(move || {
            // Relaxed RMW in the middle of the release sequence.
            f3.fetch_add(1, Ordering::Relaxed);
            let _ = d3;
        });
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(data.load(Ordering::Relaxed), 7);
        }
        w.join();
        m.join();
    });
}

/// With preemption bound 0 and no stale reads, only the sequential schedule
/// runs: a racy assert that needs a preemption cannot fire.
#[test]
fn bound_zero_is_sequential() {
    let b = Builder {
        preemption_bound: Some(0),
        staleness_bound: 0,
        ..Builder::default()
    };
    b.check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        // Spawn parks the child; with no preemption allowed the parent runs
        // to its join, so the child sees the parent's store.
        let parent_store = Arc::clone(&n);
        parent_store.store(1, Ordering::Relaxed);
        let t = loom_shim::thread::spawn(move || n2.load(Ordering::Relaxed));
        assert_eq!(t.join(), 1);
    });
}

/// Exploration is deterministic: same model, same execution count.
#[test]
fn deterministic_iteration_count() {
    let count = |_: ()| {
        let b = Builder::default();
        match b.check_outcome(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = loom_shim::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Release);
            });
            n.fetch_add(1, Ordering::Release);
            t.join();
            assert_eq!(n.load(Ordering::Acquire), 2);
        }) {
            loom_shim::Outcome::Pass { iterations } => iterations,
            loom_shim::Outcome::Fail { .. } => panic!("model unexpectedly failed"),
        }
    };
    assert_eq!(count(()), count(()));
}

/// A seqlock-shaped torn read: writer bumps seq around field writes but
/// with orderings too weak — reader can admit a torn snapshot. This is the
/// pre-fix flight-recorder shape; the checker must catch it.
#[test]
fn weak_seqlock_torn_read_found() {
    assert!(model_fails(|| {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (s2, a2, b2) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let t = loom_shim::thread::spawn(move || {
            // Broken writer: Release on seq does not order the *later*
            // relaxed field stores; they can drift past the closing store.
            s2.store(1, Ordering::Release);
            a2.store(1, Ordering::Relaxed);
            b2.store(1, Ordering::Relaxed);
            s2.store(2, Ordering::Release);
        });
        let s1 = seq.load(Ordering::Acquire);
        let ra = a.load(Ordering::Relaxed);
        let rb = b.load(Ordering::Relaxed);
        let s2v = seq.load(Ordering::Acquire);
        if s1 == s2v && s1 % 2 == 0 {
            assert_eq!(ra, rb, "accepted torn seqlock read");
        }
        t.join();
    }));
}

/// The correct (Boehm) seqlock protocol verifies under the same reader.
#[test]
fn correct_seqlock_passes() {
    model(|| {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (s2, a2, b2) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let t = loom_shim::thread::spawn(move || {
            s2.store(1, Ordering::Relaxed);
            fence(Ordering::Release);
            a2.store(1, Ordering::Relaxed);
            b2.store(1, Ordering::Relaxed);
            s2.store(2, Ordering::Release);
        });
        let s1 = seq.load(Ordering::Acquire);
        let ra = a.load(Ordering::Relaxed);
        let rb = b.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2v = seq.load(Ordering::Relaxed);
        if s1 == s2v && s1 % 2 == 0 {
            assert_eq!(ra, rb);
        }
        t.join();
    });
}
