//! Vendored stand-in for [`crossbeam-epoch`](https://crates.io/crates/crossbeam-epoch).
//!
//! The build environment for this repository has no network access, so the
//! real crate cannot be fetched. This shim implements the subset of the API
//! the workspace uses — [`pin`], [`Guard`], [`Owned`], [`Shared`],
//! [`Guard::defer_destroy`] and [`Guard::defer_unchecked`] — on top of a
//! small but *real* epoch-based reclamation scheme (three-epoch EBR in the
//! style of Fraser's thesis):
//!
//! * a global epoch counter advances by 2 (the low bit of a participant's
//!   announcement word is its "pinned" flag);
//! * every thread registers a participant record in a global lock-free list
//!   and announces the epoch it is pinned in;
//! * the global epoch only advances when every pinned participant has
//!   announced the current epoch;
//! * garbage retired while pinned in epoch `e` is freed by its owning thread
//!   once the global epoch has advanced twice past `e` (so every thread that
//!   could have observed the retired pointer has unpinned).
//!
//! Deferred closures are owned and executed by the retiring thread only, so
//! they need not be `Send`; garbage still unreclaimed when a thread exits is
//! leaked (the real crate migrates it to a global queue — the workloads in
//! this workspace retire bounded garbage per thread, so the simpler policy
//! is fine).

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// A participant's announcement word: `epoch | PINNED` while pinned, `0`
/// while quiescent. Epochs start at 2 so `0` is never a valid pinned value.
const PINNED: usize = 1;

/// Global epoch. Advances by 2; the low bit is reserved for [`PINNED`] in
/// participant announcements.
static GLOBAL_EPOCH: AtomicUsize = AtomicUsize::new(2);

/// Head of the global participant list (push-only; records are leaked when
/// threads exit, which bounds the list by the peak thread count).
static PARTICIPANTS: AtomicPtr<Participant> = AtomicPtr::new(std::ptr::null_mut());

/// How many pins happen between attempts to advance the global epoch and
/// collect expired garbage.
const PINS_PER_COLLECT: usize = 64;

struct Participant {
    /// `epoch | PINNED` while the owning thread is pinned, 0 otherwise.
    state: AtomicUsize,
    next: *const Participant,
}

/// One epoch's worth of deferred destructors, owned by the retiring thread.
struct Bag {
    /// The epoch the owning thread was pinned in when the items were retired.
    epoch: usize,
    items: Vec<Box<dyn FnOnce()>>,
}

struct LocalHandle {
    participant: &'static Participant,
    /// Re-entrant pin depth; the participant is announced only at depth 0->1.
    pin_depth: Cell<usize>,
    /// Epoch announced by the current outermost pin.
    local_epoch: Cell<usize>,
    /// Retired garbage, oldest epoch first.
    bags: RefCell<VecDeque<Bag>>,
    pins: Cell<usize>,
}

impl LocalHandle {
    fn register() -> LocalHandle {
        let record = Box::into_raw(Box::new(Participant {
            state: AtomicUsize::new(0),
            next: std::ptr::null(),
        }));
        let mut head = PARTICIPANTS.load(Ordering::Acquire);
        loop {
            // Not yet published: writing through the raw pointer is exclusive.
            unsafe { (*record).next = head };
            match PARTICIPANTS.compare_exchange(
                head,
                record,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        LocalHandle {
            // Leaked and never removed from the list, hence 'static.
            participant: unsafe { &*record },
            pin_depth: Cell::new(0),
            local_epoch: Cell::new(0),
            bags: RefCell::new(VecDeque::new()),
            pins: Cell::new(0),
        }
    }

    fn pin(&self) {
        let depth = self.pin_depth.get();
        self.pin_depth.set(depth + 1);
        if depth > 0 {
            return;
        }
        // Announce the current global epoch, re-checking that it was still
        // current after the announcement became visible (SeqCst store) so the
        // epoch can advance at most once concurrently with the announcement —
        // the safety margin below absorbs that race.
        loop {
            let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
            self.participant.state.store(epoch | PINNED, Ordering::SeqCst);
            if GLOBAL_EPOCH.load(Ordering::SeqCst) == epoch {
                self.local_epoch.set(epoch);
                break;
            }
        }
        let pins = self.pins.get() + 1;
        self.pins.set(pins);
        if pins % PINS_PER_COLLECT == 0 {
            try_advance();
            self.collect();
        }
    }

    fn unpin(&self) {
        let depth = self.pin_depth.get();
        debug_assert!(depth > 0, "unpin without matching pin");
        self.pin_depth.set(depth - 1);
        if depth == 1 {
            self.participant.state.store(0, Ordering::SeqCst);
        }
    }

    fn defer(&self, f: Box<dyn FnOnce()>) {
        debug_assert!(self.pin_depth.get() > 0, "defer while unpinned");
        let epoch = self.local_epoch.get();
        let mut bags = self.bags.borrow_mut();
        match bags.back_mut() {
            Some(bag) if bag.epoch == epoch => bag.items.push(f),
            _ => bags.push_back(Bag { epoch, items: vec![f] }),
        }
    }

    /// Run the destructors of every bag old enough that no thread can still
    /// hold a reference: the global epoch must have advanced at least twice
    /// (+4) past the bag's epoch; we require +6 for an extra margin against
    /// the announcement race documented in `pin`.
    fn collect(&self) {
        let global = GLOBAL_EPOCH.load(Ordering::SeqCst);
        loop {
            let bag = {
                let mut bags = self.bags.borrow_mut();
                match bags.front() {
                    Some(front) if global >= front.epoch + 6 => bags.pop_front(),
                    _ => None,
                }
            };
            match bag {
                Some(bag) => {
                    for f in bag.items {
                        f();
                    }
                }
                None => break,
            }
        }
    }
}

/// Advance the global epoch if every pinned participant has announced the
/// current one. A single failed scan simply leaves the epoch where it is —
/// some later pin will retry.
fn try_advance() {
    let global = GLOBAL_EPOCH.load(Ordering::SeqCst);
    let mut cursor = PARTICIPANTS.load(Ordering::Acquire) as *const Participant;
    while let Some(p) = unsafe { cursor.as_ref() } {
        let state = p.state.load(Ordering::SeqCst);
        if state & PINNED != 0 && state & !PINNED != global {
            return;
        }
        cursor = p.next;
    }
    let _ = GLOBAL_EPOCH.compare_exchange(
        global,
        global + 2,
        Ordering::SeqCst,
        Ordering::SeqCst,
    );
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::register();
}

/// Pin the current thread, protecting every shared pointer loaded while the
/// returned [`Guard`] is alive from reclamation. Re-entrant.
pub fn pin() -> Guard {
    LOCAL.with(|local| local.pin());
    Guard { _not_send: PhantomData }
}

/// A witness that the current thread is pinned. Dropping the guard unpins
/// (when the outermost of nested guards is dropped).
pub struct Guard {
    /// Guards are tied to the pinning thread's local state.
    _not_send: PhantomData<*const ()>,
}

impl Guard {
    /// Defer dropping of a heap-allocated object until no thread can hold a
    /// reference to it anymore.
    ///
    /// # Safety
    /// The pointed-to object must have been allocated with `Box` (via
    /// [`Owned`]), must not be reachable from shared memory by the time the
    /// epoch advances twice, and must not be destroyed twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        let ptr = shared.ptr.as_ptr();
        unsafe {
            self.defer_unchecked(move || {
                drop(Box::from_raw(ptr));
            });
        }
    }

    /// Defer an arbitrary closure until no thread pinned at the current epoch
    /// can be running anymore. The closure runs on the retiring thread.
    ///
    /// # Safety
    /// The closure must be safe to run at any later point on this thread
    /// (typically it frees memory unreachable from shared state), and must
    /// not access borrowed data that could be dropped before it runs.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        let boxed: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // Erase the closure's lifetime: the caller promises (by the unsafe
        // contract) that whatever it captures outlives the deferral.
        let boxed: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(boxed) };
        LOCAL.with(|local| local.defer(boxed));
    }

    /// Flush and collect what garbage can be collected now. Provided for API
    /// parity; collection also happens automatically every few pins.
    pub fn flush(&self) {
        try_advance();
        LOCAL.with(|local| local.collect());
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        LOCAL.with(|local| local.unpin());
    }
}

/// An owned heap allocation that can be published into the shared domain.
pub struct Owned<T> {
    ptr: NonNull<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Owned<T> {
        Owned {
            ptr: NonNull::from(Box::leak(Box::new(value))),
        }
    }

    /// Convert into a [`Shared`] pointer valid for the guard's lifetime,
    /// relinquishing ownership (the allocation must eventually be freed with
    /// [`Guard::defer_destroy`] or intentionally leaked).
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared { ptr, _marker: PhantomData }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // An Owned that was never published is simply deallocated.
        unsafe { drop(Box::from_raw(self.ptr.as_ptr())) }
    }
}

/// A shared pointer valid while the guard it was created under is alive.
pub struct Shared<'g, T> {
    ptr: NonNull<T>,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Dereference the shared pointer.
    ///
    /// # Safety
    /// The pointer must still reference a live object (guaranteed while the
    /// creating operation's guard is held and the object is not yet retired).
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*self.ptr.as_ptr() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn pin_is_reentrant() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
    }

    #[test]
    fn deferred_destructors_eventually_run() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counter;
        impl Drop for Counter {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        for _ in 0..10 * PINS_PER_COLLECT {
            let guard = pin();
            let shared = Owned::new(Counter).into_shared(&guard);
            unsafe { guard.defer_destroy(shared) };
        }
        // Give the collector a few more chances with no outstanding garbage.
        for _ in 0..10 * PINS_PER_COLLECT {
            let guard = pin();
            guard.flush();
        }
        assert!(DROPS.load(Ordering::SeqCst) > 0, "no garbage was ever collected");
    }

    #[test]
    fn concurrent_pin_unpin_and_retire() {
        let stop = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let guard = pin();
                        let shared = Owned::new(n).into_shared(&guard);
                        assert_eq!(unsafe { *shared.deref() }, n);
                        unsafe { guard.defer_destroy(shared) };
                        n = n.wrapping_add(1);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
