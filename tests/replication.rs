//! End-to-end replication tests (DESIGN.md §9): a follower tailing a
//! churning primary must only ever expose consistent prefixes of the
//! primary's history; a checkpoint plus change-stream replay must rebuild a
//! crashed server's state *exactly*; and checkpoints must restore onto any
//! structure shape, whatever the primary's shard count was.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mapapi::ConcurrentMap;
use replica::{Checkpoint, Follower};
use server::{Connection, Request, Server, ServerOpts};

const REGION_START: u64 = 1000;
const REGION_END: u64 = 1064; // exclusive
const REGION_LEN: usize = (REGION_END - REGION_START) as usize;

fn region_keysum() -> u128 {
    (REGION_START..REGION_END).map(|k| k as u128).sum()
}

/// The differential core: a sharded primary under mixed churn (inserts and
/// removes outside a conserved region, atomic RMW inside it) with a
/// plain-map follower tailing its change stream.  Every follower **full
/// scan** must be a consistent prefix of the primary's history — the region
/// exactly conserved with multiple-of-key values, every other key carrying
/// its insert value, the whole snapshot sorted and duplicate-free — at
/// whatever seqno the follower happens to have reached.  After the tail
/// drains, follower and primary must agree exactly.
#[test]
fn follower_full_scans_are_consistent_prefixes_under_churn() {
    let primary = Arc::new(harness::try_make_replicated("shard4(int-bst-pathcas)").unwrap());
    for k in REGION_START..REGION_END {
        assert!(primary.insert(k, k), "region prefill {k}");
    }
    // Checkpoint after the region exists, bootstrap onto a *different*
    // shape: replay is structure-independent.
    let follower = Follower::bootstrap(
        Box::new(mapapi::reference::LockedBTreeMap::new()),
        &primary.checkpoint(),
    );
    let log = primary.log();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| replica::tail_log(&log, &follower, &stop));
        for seed in [0x1111u64, 0x2222, 0x3333] {
            let primary = &primary;
            let stop = &stop;
            s.spawn(move || {
                let mut x = seed;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    match x % 4 {
                        // Region RMW: values stay positive multiples of the
                        // key.  The closure tolerates a speculative `None`
                        // invocation (PathCAS may call it on a stale
                        // not-found traversal it then fails to validate).
                        3 => {
                            let k = REGION_START + x % REGION_LEN as u64;
                            assert!(
                                primary.rmw(k, &mut |v| v.map_or(0, |v| v + k)),
                                "rmw found region key {k} absent"
                            );
                        }
                        // Insert/remove churn strictly outside the region.
                        _ => {
                            let k = 1 + x % 3000;
                            let k = if (REGION_START..REGION_END).contains(&k) { k + 2000 } else { k };
                            if x & 1 == 0 {
                                let _ = primary.insert(k, k);
                            } else {
                                let _ = primary.remove(k);
                            }
                        }
                    }
                }
            });
        }

        for i in 0..300 {
            let snap = follower.scan(1, 100_000);
            let seq = follower.applied_seqno();
            let mut count = 0usize;
            let mut sum = 0u128;
            for &(k, v) in &snap {
                if (REGION_START..REGION_END).contains(&k) {
                    count += 1;
                    sum += k as u128;
                    assert!(
                        v >= k && v % k == 0,
                        "scan #{i} @ seqno {seq}: torn region value {v} at {k}"
                    );
                } else {
                    assert_eq!(v, k, "scan #{i} @ seqno {seq}: churn key {k} carries {v}");
                }
            }
            assert_eq!(count, REGION_LEN, "scan #{i} @ seqno {seq}: region keys lost");
            assert_eq!(sum, region_keysum(), "scan #{i} @ seqno {seq}: region keysum drifted");
            assert!(
                snap.windows(2).all(|w| w[0].0 < w[1].0),
                "scan #{i} @ seqno {seq}: unsorted or duplicated keys"
            );
        }
        stop.store(true, Ordering::Release);
    });
    // `tail_log` drains before exiting: equality must now be exact.
    assert_eq!(follower.applied_seqno(), primary.log().seqno());
    let (ps, fs) = (primary.stats(), follower.stats());
    assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum), "drained follower diverged");
    assert_eq!(follower.scan(1, 100_000), primary.scan(1, 100_000), "snapshots differ key-by-key");
}

/// Crash recovery: wire clients churn a served primary, a checkpoint is cut
/// (and written to disk) mid-churn, and the server is then shut down with
/// the clients still hammering it.  Restoring the checkpoint from disk and
/// replaying the change stream past the cut must rebuild the final state
/// **exactly** — same seqno, same stats, same key-by-key full scan as the
/// in-process map the server was serving when it died.
#[test]
fn crash_recovery_checkpoint_plus_replay_is_exact() {
    let rep = Arc::new(harness::try_make_replicated("int-avl-pathcas").unwrap());
    for k in 1..=500u64 {
        assert!(rep.insert(k, k), "prefill {k}");
    }
    let log = rep.log();
    let srv = Server::start_with(
        Arc::clone(&rep) as Arc<dyn ConcurrentMap>,
        ServerOpts { log: Some(rep.log()), ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = srv.local_addr();
    let path = std::env::temp_dir().join(format!("pathcas-ckpt-{}.bin", std::process::id()));

    std::thread::scope(|s| {
        for t in 0..3u64 {
            s.spawn(move || {
                // Raw connections looping until the "crash": once the server
                // dies mid-churn, requests fail and the client gives up —
                // which is the point, not a test failure.
                let Ok(mut conn) = Connection::connect(addr) else { return };
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                loop {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = 1 + x % 2000;
                    let req = match x % 3 {
                        0 => Request::Put(k, k),
                        1 => Request::Del(k),
                        _ => Request::Rmw(k, 1),
                    };
                    if conn.request(&req).is_err() {
                        return;
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        rep.checkpoint().write_to(&path).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // The "crash": shutdown joins the handler threads, each finishing
        // (at most) the request it was executing — so afterwards the
        // in-process map is the ground truth recovery must reproduce.
        srv.shutdown();
    });

    let ckpt = Checkpoint::read_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        ckpt.seqno >= 500 && ckpt.seqno < log.seqno(),
        "checkpoint (seqno {}) was not cut mid-churn (log head {})",
        ckpt.seqno,
        log.seqno()
    );
    let restored = Follower::bootstrap(Box::new(pathcas_ds::PathCasAvl::new()), &ckpt);
    restored.catch_up(&log);
    assert_eq!(restored.applied_seqno(), log.seqno(), "replay stopped short of the log head");
    let (ps, fs) = (rep.stats(), restored.stats());
    assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum), "recovered stats differ");
    assert_eq!(restored.scan(1, 100_000), rep.scan(1, 100_000), "recovered state differs");
}

/// Checkpoint portability: a cut from an 8-shard primary (one section per
/// shard) restores byte-identically onto a plain tree and onto a 3-shard
/// composition of a different structure — shard ownership is recomputed on
/// insert, so the section layout carries no obligation.
#[test]
fn checkpoints_restore_across_shard_counts() {
    let rep = harness::try_make_replicated("shard8(int-avl-pathcas)").unwrap();
    for k in 1..=300u64 {
        assert!(rep.insert(k, k * 2), "prefill {k}");
    }
    assert!(rep.remove(7));
    assert!(rep.rmw(9, &mut |v| v.unwrap() + 1));
    let ckpt = rep.checkpoint();
    assert_eq!(ckpt.sections.len(), 8, "one checkpoint section per primary shard");
    assert_eq!(ckpt.key_count(), 299);
    // Round-trip through the serialized form before restoring.
    let ckpt = Checkpoint::decode(&ckpt.encode()).unwrap();
    for target in ["int-bst-pathcas", "shard3(locked-btreemap)"] {
        let f = Follower::bootstrap(harness::make(target), &ckpt);
        assert_eq!(f.applied_seqno(), ckpt.seqno, "{target}");
        let (ps, fs) = (rep.stats(), f.stats());
        assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum), "{target}");
        assert_eq!(f.get(7), None, "{target}: removed key resurfaced");
        assert_eq!(f.get(9), Some(9 * 2 + 1), "{target}: rmw result lost");
        assert_eq!(f.scan(1, 400), rep.scan(1, 400), "{target}: merged order differs");
    }
}
