//! Cross-crate integration tests: every algorithm registered in the harness —
//! the PathCAS trees, the handcrafted baseline, the TM trees and the MCMS
//! tree — is run through the same correctness and stress suites, exactly the
//! Setbench-style validation methodology the paper uses (§5, Appendix F).

use std::time::Duration;

use harness::registry;
use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
use mapapi::suites::*;

#[test]
fn every_algorithm_passes_basic_semantics() {
    for factory in registry() {
        let map = (factory.build)();
        check_basic_semantics(&map);
    }
}

#[test]
fn every_algorithm_matches_the_oracle() {
    for factory in registry() {
        let map = (factory.build)();
        check_random_against_oracle(&map, 3000, 96, 0x5EED ^ factory.name.len() as u64);
        check_stats_consistency(&map, 96);
    }
}

#[test]
fn every_algorithm_passes_ordered_patterns() {
    for factory in registry() {
        let map = (factory.build)();
        check_ordered_patterns(&map);
    }
}

#[test]
fn every_algorithm_survives_disjoint_stripes() {
    for factory in registry() {
        let map = (factory.build)();
        stress_disjoint_stripes(&map, 4, 120);
    }
}

#[test]
fn every_algorithm_passes_keysum_validation_under_contention() {
    for factory in registry() {
        let map = (factory.build)();
        prefill(&map, 256, 128, 7);
        stress_keysum(&map, 4, 256, 50, Duration::from_millis(150), 0xFACE);
    }
}

#[test]
fn harness_trials_run_on_every_algorithm() {
    let w = harness::Workload::paper(512, 20, 2, Duration::from_millis(40));
    for factory in registry() {
        let map = (factory.build)();
        let r = harness::run_trial(&map, &w);
        assert!(r.total_ops > 0, "{} performed no operations", factory.name);
    }
}
