//! Multi-thread scan-linearizability suite.
//!
//! The same conserved-sum methodology as the `txn-transfer` scenario and the
//! Setbench keysum stress, applied to range scans: a fixed **region** of keys
//! is inserted once and never removed, so the region's key count and key sum
//! are conserved quantities — every scan over the region must observe exactly
//! that multiset, no matter how much the rest of the structure churns around
//! it (rotations, two-child deletions promoting keys through scanned nodes,
//! bucket-list splices).  A scan that misses a present key, double-counts a
//! relocated one, or observes a half-applied RMW breaks the check.
//!
//! Structures with an atomic `rmw` additionally run an RMW writer hammering
//! the region itself: values start at `k` and every RMW adds `k`, so any
//! value a scan observes must be a positive multiple of its key.  With the
//! old composed `remove`+`insert` RMW this suite fails immediately — the key
//! is observably absent mid-RMW and the scan's region count drops.

use std::sync::atomic::{AtomicBool, Ordering};

use mapapi::ConcurrentMap;

const REGION_START: u64 = 1000;
const REGION_LEN: usize = 64;
const REGION_END: u64 = REGION_START + REGION_LEN as u64; // exclusive

/// Conserved key sum of the region.
fn region_keysum() -> u128 {
    (REGION_START..REGION_END).map(|k| k as u128).sum()
}

/// Run churn + (optionally) region RMW writers while the main thread scans
/// the region and asserts the conserved count/sum on every observation.
fn run_suite<M: ConcurrentMap + ?Sized>(map: &M, with_rmw: bool, scans: usize) {
    run_suite_on(map, map, true, with_rmw, scans);
}

/// The generalized suite: all writes (prefill, churn, RMW) go to
/// `write_map`, all scans go to `scan_map`.  For ordinary structures the two
/// are the same object; for replication they are a primary and a follower
/// observing it through the change stream — whose scans must *still* conserve
/// the region on every observation, because sequential event application
/// means any follower state is a consistent (if stale) prefix of the
/// primary's history.  `prefill_region` is false when the caller already
/// installed the region (e.g. before cutting the checkpoint a follower
/// bootstraps from, so the region is never mid-replay during a scan).
fn run_suite_on<W: ConcurrentMap + ?Sized, S: ConcurrentMap + ?Sized>(
    write_map: &W,
    scan_map: &S,
    prefill_region: bool,
    with_rmw: bool,
    scans: usize,
) {
    if prefill_region {
        for k in REGION_START..REGION_END {
            assert!(write_map.insert(k, k), "{}: region prefill {k}", write_map.name());
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Churn writers: insert/remove keys strictly outside the scanned
        // range, on both sides, so tree restructuring runs through the
        // region's ancestors without ever changing the region itself.
        for (lo, hi, seed) in [(1u64, REGION_START - 1, 0x1111u64), (REGION_END, 3000, 0x2222)] {
            let stop = &stop;
            let map = &*write_map;
            s.spawn(move || {
                let mut x = seed;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = lo + x % (hi - lo + 1);
                    if x & 1 == 0 {
                        let _ = map.insert(k, k);
                    } else {
                        let _ = map.remove(k);
                    }
                }
            });
        }
        if with_rmw {
            // RMW writers on the region itself: always-present keys whose
            // values stay multiples of their key only if the RMW is atomic.
            for seed in [0x3333u64, 0x4444] {
                let stop = &stop;
                let map = &*write_map;
                s.spawn(move || {
                    let mut x = seed;
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let k = REGION_START + x % REGION_LEN as u64;
                        // The closure tolerates `None`: PathCAS `rmw` may
                        // invoke it speculatively on a stale not-found
                        // traversal whose validation then fails and retries,
                        // so the key only *looks* absent.  No detection power
                        // is lost — if such an insert ever committed, the
                        // `was_present` assert below would fire and the scan
                        // invariant would reject the value 0.
                        let was_present = map.rmw(k, &mut |v| v.map_or(0, |v| v + k));
                        assert!(was_present, "{}: rmw found region key {k} absent", map.name());
                    }
                });
            }
        }

        for i in 0..scans {
            let got = scan_map.scan(REGION_START, REGION_LEN);
            assert_eq!(
                got.len(),
                REGION_LEN,
                "{}: scan #{i} lost region keys: {:?}",
                scan_map.name(),
                got.iter().map(|&(k, _)| k).collect::<Vec<_>>()
            );
            let mut sum = 0u128;
            for (j, &(k, v)) in got.iter().enumerate() {
                assert_eq!(k, REGION_START + j as u64, "{}: scan #{i} out of order", scan_map.name());
                assert!(
                    v >= k && v % k == 0,
                    "{}: scan #{i} saw torn value {v} at {k}",
                    scan_map.name()
                );
                sum += k as u128;
            }
            assert_eq!(sum, region_keysum(), "{}: scan #{i} keysum not conserved", scan_map.name());
        }
        stop.store(true, Ordering::Relaxed);
    });
}

// ---- structures with atomic scans AND atomic rmw: full suite -------------

#[test]
fn pathcas_bst_scans_never_observe_partial_state() {
    run_suite(&pathcas_ds::PathCasBst::new(), true, 400);
}

#[test]
fn pathcas_avl_scans_never_observe_partial_state() {
    let t = pathcas_ds::PathCasAvl::new();
    run_suite(&t, true, 400);
    t.check_invariants();
}

#[test]
fn pathcas_list_scans_never_observe_partial_state() {
    let l = pathcas_ds::PathCasList::new();
    run_suite(&l, true, 150);
    l.check_invariants();
}

#[test]
fn pathcas_hashmap_scans_never_observe_partial_state() {
    // Per-bucket snapshots: region keys are each always present in their
    // bucket, so the merged scan must still conserve the region.
    run_suite(&pathcas_ds::PathCasHashMap::with_buckets(32), true, 400);
}

#[test]
fn oracle_scans_never_observe_partial_state() {
    run_suite(&mapapi::reference::LockedBTreeMap::new(), true, 400);
}

#[test]
fn sharded_avl_scans_never_observe_partial_state() {
    // The k-way merge composes per-shard atomic snapshots.  Region keys
    // never move between shards (ownership is a pure hash of the key), and
    // each is always present in its owner, so every merged scan must still
    // observe the full conserved region — even with RMW writers hammering
    // the region through the per-shard atomic rmw.
    run_suite(
        &shard::ShardedMap::from_fn(8, |_| Box::new(pathcas_ds::PathCasAvl::new())),
        true,
        400,
    );
}

// ---- baselines without an atomic rmw: churn-only (their composed rmw
// would legitimately make region keys transiently absent) ------------------

#[test]
fn stm_avl_scans_never_observe_partial_state_under_churn() {
    run_suite(&stm::TxAvl::new(stm::Norec::new()), false, 150);
}

#[test]
fn mcms_bst_scans_never_observe_partial_state_under_churn() {
    run_suite(&mcms::McmsBst::new(), false, 150);
}

#[test]
fn ticket_bst_scans_never_observe_partial_state_under_churn() {
    // Best-effort scan, but single-key updates still publish atomically and
    // the region is immutable — so the conserved region must be observed.
    run_suite(&baselines::TicketBst::new(), false, 400);
}

// ---- replication: writes on the primary, scans on a live follower --------

/// The conserved region observed **through the change stream**: churn and
/// region RMW hammer the primary while the main thread scans a follower
/// that a background thread is tailing.  The region was checkpointed before
/// the follower bootstrapped, so it is present at every applied seqno, and
/// sequential replay means every follower scan is a consistent prefix of
/// the primary's history — the conserved count/sum and the
/// multiple-of-key value discipline must hold on every observation even
/// though the follower is arbitrarily stale.  At the end the drained
/// follower must match the primary exactly.
#[test]
fn follower_scans_never_observe_partial_state() {
    let primary = replica::ReplicatedMap::new(Box::new(pathcas_ds::PathCasAvl::new()));
    for k in REGION_START..REGION_END {
        assert!(primary.insert(k, k), "region prefill {k}");
    }
    // A different structure on purpose: replay is shape-independent.
    let follower =
        replica::Follower::bootstrap(Box::new(pathcas_ds::PathCasBst::new()), &primary.checkpoint());
    let log = primary.log();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| replica::tail_log(&log, &follower, &stop));
        run_suite_on(&primary, &follower, false, true, 400);
        stop.store(true, Ordering::Release);
    });
    // `tail_log` drains before exiting: the follower is now *exactly* the
    // primary, not just a prefix of it.
    assert_eq!(follower.applied_seqno(), primary.log().seqno());
    let (ps, fs) = (primary.stats(), follower.stats());
    assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum), "drained follower diverged");
    mapapi::suites::check_scan_matches_stats(&follower, &fs);
}

// ---- the composition served over loopback TCP ----------------------------

/// The conserved region through the full service stack: `shard8(avl)`
/// behind a real TCP server, driven through a `ServiceMap` pool.  Churn-only
/// (the wire RMW is the masked affine update `(v + δ) & MAX_KEY`, whose even
/// mask breaks the multiple-of-key value discipline for odd keys), which is
/// exactly the scan-atomicity oracle: framing, pipelining, and the k-way
/// shard merge must never lose, duplicate, or reorder a region key.
#[test]
fn service_scans_never_observe_partial_state_under_churn() {
    let map: std::sync::Arc<dyn ConcurrentMap> =
        std::sync::Arc::from(harness::make("shard8(int-avl-pathcas)"));
    let srv = server::Server::start(map, "127.0.0.1:0").unwrap();
    // 2 churn writers + the scanning main thread; one spare connection.
    let svc = server::ServiceMap::connect(srv.local_addr(), 4, "shard8(int-avl-pathcas)").unwrap();
    run_suite(&svc, false, 150);
    let stats = svc.stats();
    mapapi::suites::check_scan_matches_stats(&svc, &stats);
    drop(svc);
    srv.shutdown();
}

/// Differential check under concurrency: the same region discipline on the
/// oracle and a PathCAS tree simultaneously; quiescent full scans of both
/// must agree exactly (catches keys leaking between churn and region).
#[test]
fn quiescent_full_scans_agree_with_the_oracle_after_stress() {
    let tree = pathcas_ds::PathCasAvl::new();
    let oracle = mapapi::reference::LockedBTreeMap::new();
    run_suite(&tree, true, 50);
    run_suite(&oracle, true, 50);
    // The churn is pseudo-random but seeded identically, yet thread timing
    // differs — so compare each structure against its *own* stats instead.
    for map in [&tree as &dyn ConcurrentMap, &oracle] {
        let stats = map.stats();
        mapapi::suites::check_scan_matches_stats(map, &stats);
    }
}
