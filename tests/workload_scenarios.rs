//! Cross-crate integration tests for the workload engine: every scenario
//! runs against real registry structures, and the `txn-transfer` scenario's
//! conserved-sum linearizability invariant holds under genuine multi-thread
//! contention on the PathCAS structures and the STM baseline.

use std::time::Duration;

use mapapi::ConcurrentMap;
use workload::{all_scenarios, run_scenario, scenario, RunParams};

/// The acceptance set: PathCAS AVL, BST, hashmap, and one STM baseline.
const STRUCTURES: [&str; 4] =
    ["int-avl-pathcas", "int-bst-pathcas", "hashmap-pathcas", "int-avl-norec"];

#[test]
fn every_scenario_runs_against_every_acceptance_structure() {
    for sc in all_scenarios() {
        for name in STRUCTURES {
            let map = harness::make(name);
            let params = RunParams::standard(2, 512, Duration::from_millis(30), 0xBEEF);
            let out = run_scenario(&map, &sc, &params);
            assert!(out.total_ops > 0, "{}/{}: no ops completed", sc.name, name);
            assert_eq!(out.hist.count(), out.total_ops, "{}/{}: histogram mismatch", sc.name, name);
            let p = out.hist.percentiles();
            assert!(
                p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999,
                "{}/{}: percentiles not monotone",
                sc.name,
                name
            );
        }
    }
}

/// The linearizability check of the acceptance criteria: concurrent 2-key
/// KCAS transfers must conserve the total balance — lost updates, partial
/// applications, or doubly-applied transfers would all break the sum.
#[test]
fn txn_transfer_conserves_balance_under_contention() {
    let sc = scenario("txn-transfer");
    for name in STRUCTURES {
        let map = harness::make(name);
        let params = RunParams::standard(4, 512, Duration::from_millis(150), 0x7AB5);
        let out = run_scenario(&map, &sc, &params);
        let bank = out.bank.expect("txn-transfer must produce a bank check");
        assert!(
            bank.conserved(),
            "{name}: bank sum {} != expected {} after {} committed transfers",
            bank.actual_sum,
            bank.expected_sum,
            bank.committed
        );
        assert!(bank.committed > 0, "{name}: no transfer committed");
        // The account metadata must still be fully present in the map.
        for i in 0..sc.accounts {
            assert!(map.contains(i + 1), "{name}: lost account metadata {i}");
        }
    }
}

/// The scan scenarios must drive the native `scan` on real structures:
/// scan latencies land in their own histogram, and after the (joined)
/// run a quiescent full-range scan agrees exactly with `stats()`.
#[test]
fn scan_scenarios_exercise_native_scans() {
    for sc_name in ["ycsb-e", "scan-heavy"] {
        let sc = scenario(sc_name);
        for name in STRUCTURES {
            let map = harness::make(name);
            let params = RunParams::standard(2, 512, Duration::from_millis(40), 0x5CA2);
            let out = run_scenario(&map, &sc, &params);
            assert!(out.scan_hist.count() > 0, "{sc_name}/{name}: no scan latencies recorded");
            assert!(
                out.scan_hist.count() <= out.total_ops,
                "{sc_name}/{name}: more scans than ops"
            );
            let p = out.scan_hist.percentiles();
            assert!(p.p50 <= p.p99, "{sc_name}/{name}: scan percentiles not monotone");
            // Post-join audit: the executor collected final_stats after all
            // workers exited; a full scan must see exactly those contents.
            mapapi::suites::check_scan_matches_stats(&map, &out.final_stats);
        }
    }
}

/// Non-scan scenarios must not record scan latencies.
#[test]
fn point_scenarios_have_empty_scan_histograms() {
    let sc = scenario("ycsb-a");
    let map = harness::make("int-bst-pathcas");
    let params = RunParams::standard(2, 256, Duration::from_millis(25), 0xF00);
    let out = run_scenario(&map, &sc, &params);
    assert_eq!(out.scan_hist.count(), 0);
}

/// Same seed, same single-threaded scenario ⇒ identical op counts and
/// contents — the end-to-end reproducibility `PATHCAS_SEED` promises (the
/// op *count* varies with timing, so compare the deterministic pieces:
/// final structure contents after a fixed op count).
#[test]
fn fixed_op_runs_are_reproducible_end_to_end() {
    for name in ["int-avl-pathcas", "int-bst-pathcas"] {
        let run = |seed: u64| {
            let map = harness::make(name);
            mapapi::stress::prefill(&map, 1024, 512, mapapi::stress::prefill_seed(seed));
            workload::run_ops(&map, &scenario("ycsb-a"), 1024, 5_000, seed);
            let s = map.stats();
            (s.key_count, s.key_sum)
        };
        assert_eq!(run(1234), run(1234), "{name}: same seed must reproduce");
    }
}
