//! Property-based differential tests: arbitrary operation sequences —
//! including native range scans and atomic read-modify-writes — applied to
//! every structure and to a `BTreeMap` model must agree on every return
//! value, every scan result, and the final contents.

use std::collections::BTreeMap;

use mapapi::ConcurrentMap;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Contains(u64),
    Get(u64),
    Rmw(u64, u64),
    Scan(u64, usize),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..=key_range, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v & 0xFFFF_FFFF)),
        (1..=key_range).prop_map(Op::Remove),
        (1..=key_range).prop_map(Op::Contains),
        (1..=key_range).prop_map(Op::Get),
        (1..=key_range, 1..=0xFFFFu64).prop_map(|(k, d)| Op::Rmw(k, d)),
        (1..=key_range, 0..24usize).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn run_differential<M: ConcurrentMap>(map: &M, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let expected = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                    e.insert(v);
                    true
                } else {
                    false
                };
                assert_eq!(map.insert(k, v), expected, "{}: insert({k}) at step {i}", map.name());
            }
            Op::Remove(k) => {
                assert_eq!(map.remove(k), model.remove(&k).is_some(), "{}: remove({k}) at step {i}", map.name());
            }
            Op::Contains(k) => {
                assert_eq!(map.contains(k), model.contains_key(&k), "{}: contains({k}) at step {i}", map.name());
            }
            Op::Get(k) => {
                assert_eq!(map.get(k), model.get(&k).copied(), "{}: get({k}) at step {i}", map.name());
            }
            Op::Rmw(k, d) => {
                let expected_prev = model.get(&k).copied();
                model.insert(k, expected_prev.unwrap_or(0).wrapping_add(d) & 0xFFFF_FFFF);
                assert_eq!(
                    map.rmw(k, &mut |v| v.unwrap_or(0).wrapping_add(d) & 0xFFFF_FFFF),
                    expected_prev.is_some(),
                    "{}: rmw({k}) at step {i}",
                    map.name()
                );
                assert_eq!(map.get(k), model.get(&k).copied(), "{}: rmw({k}) result at step {i}", map.name());
            }
            Op::Scan(start, len) => {
                let expected: Vec<(u64, u64)> =
                    model.range(start..).take(len).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(
                    map.scan(start, len),
                    expected,
                    "{}: scan({start}, {len}) at step {i}",
                    map.name()
                );
            }
        }
    }
    let stats = map.stats();
    assert_eq!(stats.key_count, model.len() as u64, "{}: final size", map.name());
    assert_eq!(stats.key_sum, model.keys().map(|&k| k as u128).sum::<u128>(), "{}: final key sum", map.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pathcas_bst_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..400)) {
        run_differential(&pathcas_ds::PathCasBst::new(), &ops);
    }

    #[test]
    fn pathcas_avl_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..400)) {
        let tree = pathcas_ds::PathCasAvl::new();
        run_differential(&tree, &ops);
        tree.check_invariants();
    }

    #[test]
    fn pathcas_list_matches_model(ops in proptest::collection::vec(op_strategy(32), 1..300)) {
        let list = pathcas_ds::PathCasList::new();
        run_differential(&list, &ops);
        list.check_invariants();
    }

    #[test]
    fn pathcas_hashmap_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..400)) {
        // Few buckets so merged scans cross bucket boundaries constantly.
        let map = pathcas_ds::PathCasHashMap::with_buckets(4);
        run_differential(&map, &ops);
        map.check_invariants();
    }

    #[test]
    fn ticket_bst_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..400)) {
        let tree = baselines::TicketBst::new();
        run_differential(&tree, &ops);
        tree.check_invariants();
    }

    #[test]
    fn mcms_bst_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..300)) {
        run_differential(&mcms::McmsBst::new(), &ops);
    }

    #[test]
    fn stm_avl_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..300)) {
        run_differential(&stm::TxAvl::new(stm::Norec::new()), &ops);
    }

    #[test]
    fn sharded_avl_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..400)) {
        // Few keys over many shards: scans constantly merge across shard
        // boundaries, the case the k-way merge must get exactly right.
        let map = shard::ShardedMap::from_fn(8, |_| {
            Box::new(pathcas_ds::PathCasAvl::new()) as Box<dyn ConcurrentMap>
        });
        run_differential(&map, &ops);
    }

    #[test]
    fn sharded_mixed_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..300)) {
        // Heterogeneous shards: the composition only uses the trait, so a
        // mixed set must be indistinguishable from a homogeneous one.
        let map = shard::ShardedMap::new(vec![
            Box::new(pathcas_ds::PathCasAvl::new()),
            Box::new(pathcas_ds::PathCasBst::new()),
            Box::new(mapapi::reference::LockedBTreeMap::new()),
        ]);
        run_differential(&map, &ops);
    }
}
