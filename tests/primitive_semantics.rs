//! Integration tests of the PathCAS primitive's semantics across crates:
//! the §3.2 interface contract, the §3.4 linearization behaviour observable
//! from outside, and property P1 of §3.5 (strong vexec only fails when
//! another operation succeeded).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kcas::CasWord;
use pathcas::OpBuilder;

struct Cell {
    ver: CasWord,
    data: CasWord,
}

impl Cell {
    fn new(v: u64) -> Self {
        Cell { ver: CasWord::new(0), data: CasWord::new(v) }
    }
}

#[test]
fn vexec_is_atomic_across_many_words() {
    // N cells; every operation reads all cells, visits them, and increments
    // them all together — observers must never see a partially applied
    // update (all cells always hold equal values).
    const CELLS: usize = 6;
    const THREADS: usize = 4;
    const OPS: usize = 800;
    let cells: Arc<Vec<Cell>> = Arc::new((0..CELLS).map(|_| Cell::new(0)).collect());
    let violations = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cells = Arc::clone(&cells);
            s.spawn(move || {
                let mut builder = OpBuilder::new();
                for _ in 0..OPS {
                    loop {
                        let guard = crossbeam_epoch::pin();
                        let mut op = builder.start(&guard);
                        let mut vals = Vec::new();
                        let mut vers = Vec::new();
                        for c in cells.iter() {
                            vers.push(op.visit(&c.ver));
                            vals.push(op.read(&c.data));
                        }
                        if vers.iter().any(|v| v & 1 == 1) {
                            continue;
                        }
                        for (c, (&v, &ver)) in cells.iter().zip(vals.iter().zip(vers.iter())) {
                            op.add(&c.data, v, v + 1);
                            op.add(&c.ver, ver, ver + 2);
                        }
                        if op.vexec_strong() {
                            break;
                        }
                    }
                }
                let _ = t;
            });
        }
        // A reader thread checks snapshot consistency with validated reads.
        let cells_r = Arc::clone(&cells);
        let violations_r = Arc::clone(&violations);
        s.spawn(move || {
            let mut builder = OpBuilder::new();
            for _ in 0..4000 {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let mut vals = Vec::new();
                for c in cells_r.iter() {
                    let _ = op.visit(&c.ver);
                    vals.push(op.read(&c.data));
                }
                if op.validate() && vals.windows(2).any(|w| w[0] != w[1]) {
                    violations_r.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });

    assert_eq!(violations.load(Ordering::Relaxed), 0, "validated reader saw a torn multi-word update");
    let guard = crossbeam_epoch::pin();
    let expected = (THREADS * OPS) as u64;
    for c in cells.iter() {
        assert_eq!(kcas::read(&c.data, &guard), expected);
    }
}

#[test]
fn exec_skips_validation_but_vexec_does_not() {
    let a = Cell::new(1);
    let b = Cell::new(2);
    let mut builder = OpBuilder::new();
    let guard = crossbeam_epoch::pin();

    // vexec fails if a visited node changed...
    let mut op = builder.start(&guard);
    let _ = op.visit(&a.ver);
    op.add(&b.data, 2, 3);
    a.ver.store(2);
    assert!(!op.vexec());

    // ...but exec with the same arguments succeeds.
    let mut op = builder.start(&guard);
    let _ = op.visit(&a.ver);
    op.add(&b.data, 2, 3);
    assert!(op.exec());
    assert_eq!(kcas::read(&b.data, &guard), 3);
}

#[test]
fn strong_vexec_failure_implies_another_success() {
    // Property P1: with only "reasonable" operations, when a strong vexec
    // fails, some other operation has succeeded in the meantime.  We check
    // the observable consequence: total successes equal total data increments.
    const THREADS: usize = 4;
    const OPS: usize = 3000;
    let cell = Arc::new(Cell::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cell = Arc::clone(&cell);
            let successes = Arc::clone(&successes);
            s.spawn(move || {
                let mut builder = OpBuilder::new();
                for _ in 0..OPS {
                    let guard = crossbeam_epoch::pin();
                    let mut op = builder.start(&guard);
                    let ver = op.visit(&cell.ver);
                    if ver & 1 == 1 {
                        continue;
                    }
                    let v = op.read(&cell.data);
                    op.add(&cell.data, v, v + 1);
                    op.add(&cell.ver, ver, ver + 2);
                    if op.vexec_strong() {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let guard = crossbeam_epoch::pin();
    assert_eq!(kcas::read(&cell.data, &guard), successes.load(Ordering::Relaxed));
    assert!(successes.load(Ordering::Relaxed) > 0);
}
