//! A database-style ordered index under adversarial (monotonically
//! increasing) insertion — the workload that motivates a *balanced* tree.
//! Compares the PathCAS AVL tree against the unbalanced PathCAS BST: both are
//! correct, but only the AVL tree keeps lookups logarithmic.
//!
//! Run with `cargo run --release --example balanced_index`.

use std::sync::Arc;
use std::time::Instant;

use mapapi::ConcurrentMap;
use pathcas_ds::{PathCasAvl, PathCasBst};

fn ingest_and_probe<M: ConcurrentMap>(index: Arc<M>, keys: u64, threads: u64) -> (f64, f64) {
    // Phase 1: threads append monotonically increasing "row ids".
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = Arc::clone(&index);
            s.spawn(move || {
                for i in 0..keys / threads {
                    let key = 1 + i * threads + t;
                    index.insert(key, key ^ 0xABCD);
                }
            });
        }
    });
    let ingest = start.elapsed().as_secs_f64();

    // Phase 2: point lookups.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = Arc::clone(&index);
            s.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64 ^ t;
                for _ in 0..keys / threads {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = 1 + x % keys;
                    let _ = index.get(key);
                }
            });
        }
    });
    (ingest, start.elapsed().as_secs_f64())
}

fn main() {
    let keys = 200_000u64;
    // The unbalanced tree degenerates to per-thread chains of depth ~keys/threads
    // under this workload, so its phase is quadratic; keep it small enough to
    // finish in seconds while still showing a three-orders-of-magnitude depth gap.
    let bst_keys = 20_000u64;
    let threads = 4u64;

    let avl = Arc::new(PathCasAvl::new());
    let (ingest, probe) = ingest_and_probe(Arc::clone(&avl), keys, threads);
    println!(
        "int-avl-pathcas: ingest {:.2}s, probe {:.2}s, height {}, avg depth {:.1}",
        ingest,
        probe,
        avl.actual_height(),
        avl.stats().avg_key_depth()
    );
    avl.check_invariants();

    let bst = Arc::new(PathCasBst::new());
    let (ingest, probe) = ingest_and_probe(Arc::clone(&bst), bst_keys, threads);
    let bst_stats = bst.stats();
    println!(
        "int-bst-pathcas: ingest {:.2}s, probe {:.2}s over {} keys, avg depth {:.1} (unbalanced — sequential keys degenerate)",
        ingest,
        probe,
        bst_keys,
        bst_stats.avg_key_depth()
    );
    println!(
        "balanced index keeps average depth ~log2(n) = {:.1} even at {}x the keys; the unbalanced tree does not",
        (keys as f64).log2(),
        keys / bst_keys
    );
}
