//! Quickstart: the PathCAS primitive and the PathCAS binary search tree.
//!
//! Run with `cargo run --release --example quickstart`.

use kcas::CasWord;
use mapapi::ConcurrentMap;
use pathcas::OpBuilder;
use pathcas_ds::PathCasBst;

fn main() {
    // --- 1. The primitive itself -----------------------------------------
    // Two "nodes", each with a version word and a data word.
    let ver_a = CasWord::new(0);
    let ver_b = CasWord::new(0);
    let data_b = CasWord::new(200);

    let mut builder = OpBuilder::new();
    let guard = crossbeam_epoch::pin();
    let mut op = builder.start(&guard);
    // Visit node A (it is only read), modify node B.
    let va = op.visit(&ver_a);
    let db = op.read(&data_b);
    op.add(&data_b, db, db + 5);
    op.add(&ver_b, 0, 2); // bump B's version because we modify it
    assert_eq!(va, 0);
    assert!(op.vexec(), "nothing changed concurrently, so vexec succeeds");
    println!("PathCAS primitive: data_b = {}", kcas::read(&data_b, &guard));
    drop(guard);

    // --- 2. The internal BST built on it ----------------------------------
    let tree = PathCasBst::new();
    for key in [50u64, 20, 70, 10, 30, 60, 80] {
        tree.insert(key, key * 10);
    }
    assert_eq!(tree.get(30), Some(300));
    assert!(tree.remove(50)); // two-child deletion, done atomically by vexec
    assert!(!tree.contains(50));
    let stats = tree.stats();
    println!(
        "int-bst-pathcas: {} keys, key sum {}, average depth {:.2}",
        stats.key_count,
        stats.key_sum,
        stats.avg_key_depth()
    );

    // --- 3. It is a concurrent structure ----------------------------------
    let tree = std::sync::Arc::new(PathCasBst::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = std::sync::Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    let key = 1 + (i * 4 + t);
                    tree.insert(key, key);
                    if i % 3 == 0 {
                        tree.remove(key);
                    }
                }
            });
        }
    });
    println!("after 4-thread churn: {} keys", tree.stats().key_count);
    tree.check_invariants();
    println!("invariants hold — done");
}
