//! A work-pipeline example for the PathCAS stack and queue: producers push
//! parsed "jobs" onto a queue, workers consume them, and a stack serves as a
//! free-list of reusable buffers — the kind of plumbing the paper's §6 lists
//! as further PathCAS applications.
//!
//! Run with `cargo run --release --example task_pipeline`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pathcas_ds::{PathCasQueue, PathCasStack};

fn main() {
    let jobs = Arc::new(PathCasQueue::new());
    let free_buffers = Arc::new(PathCasStack::new());
    let processed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    // Pre-populate the buffer free-list.
    for id in 1..=64u64 {
        free_buffers.push(id);
    }

    let producers = 2u64;
    let consumers = 2u64;
    let jobs_per_producer = 50_000u64;

    std::thread::scope(|s| {
        for p in 0..producers {
            let jobs = Arc::clone(&jobs);
            s.spawn(move || {
                for i in 0..jobs_per_producer {
                    jobs.enqueue(p * jobs_per_producer + i + 1);
                }
            });
        }
        for _ in 0..consumers {
            let jobs = Arc::clone(&jobs);
            let free_buffers = Arc::clone(&free_buffers);
            let processed = Arc::clone(&processed);
            let checksum = Arc::clone(&checksum);
            s.spawn(move || {
                let mut idle = 0u32;
                while idle < 100_000 {
                    match jobs.dequeue() {
                        Some(job) => {
                            idle = 0;
                            // Grab a buffer, "process" the job, return it.
                            let buffer = free_buffers.pop().unwrap_or(0);
                            checksum.fetch_add(job, Ordering::Relaxed);
                            if buffer != 0 {
                                free_buffers.push(buffer);
                            }
                            processed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => idle += 1,
                    }
                }
            });
        }
    });

    let total_jobs = producers * jobs_per_producer;
    let expected_sum = total_jobs * (total_jobs + 1) / 2;
    assert_eq!(processed.load(Ordering::Relaxed), total_jobs);
    assert_eq!(checksum.load(Ordering::Relaxed), expected_sum);
    println!(
        "pipeline processed {} jobs (checksum ok), {} buffers back on the free-list",
        total_jobs,
        free_buffers.len()
    );
}
