//! A tiny concurrent key-value store built on the PathCAS hash map: writer
//! threads ingest updates while reader threads serve lookups, and the store
//! reports throughput and a consistency check at the end.
//!
//! Run with `cargo run --release --example kv_store`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mapapi::ConcurrentMap;
use pathcas_ds::PathCasHashMap;

fn main() {
    let store = Arc::new(PathCasHashMap::with_buckets(512));
    let key_space = 100_000u64;
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    std::thread::scope(|s| {
        // Two writers: upsert-style traffic (delete + insert).
        for w in 0..2u64 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            s.spawn(move || {
                let mut x = 0x243F6A8885A308D3u64 ^ w;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = 1 + x % key_space;
                    if x & 1 == 0 {
                        store.insert(key, x >> 3);
                    } else {
                        store.remove(key);
                    }
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Two readers.
        for r in 0..2u64 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut x = 0x452821E638D01377u64 ^ r;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = 1 + x % key_space;
                    let _ = store.get(key);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(750));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();

    let stats = store.stats();
    store.check_invariants();
    println!(
        "kv_store: {:.2} M writes/s, {:.2} M reads/s, {} live keys, ~{:.1} MiB resident",
        writes.load(Ordering::Relaxed) as f64 / elapsed / 1e6,
        reads.load(Ordering::Relaxed) as f64 / elapsed / 1e6,
        stats.key_count,
        stats.approx_bytes as f64 / (1024.0 * 1024.0)
    );
}
