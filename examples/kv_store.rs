//! A concurrent key-value store serving a realistic, skewed workload: the
//! YCSB-B scenario (95% reads / 5% updates, Zipfian-distributed keys) from
//! the `workload` engine, run against the PathCAS AVL map, reporting
//! throughput *and* the per-operation latency percentile table — the
//! numbers an online service actually provisions against.
//!
//! Run with `cargo run --release --example kv_store`.  Reproducible: set
//! `PATHCAS_SEED` to vary (or pin) the key streams.

use std::time::Duration;

use mapapi::ConcurrentMap;
use pathcas_ds::PathCasAvl;
use workload::{report::fmt_ns, run_scenario, scenario, RunParams};

fn main() {
    let store = PathCasAvl::new();
    let sc = scenario("ycsb-b");
    let key_range = 100_000u64;
    let seed = std::env::var("PATHCAS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("kv_store: {} ({}) on {}", sc.name, sc.summary, store.name());
    println!("| threads | Mops/s | p50 | p90 | p99 | p99.9 | max |");
    println!("|---|---|---|---|---|---|---|");
    for threads in [1, 2, 4] {
        let params = RunParams::standard(threads, key_range, Duration::from_millis(400), seed);
        let out = run_scenario(&store, &sc, &params);
        let p = out.hist.percentiles();
        println!(
            "| {} | {:.3} | {} | {} | {} | {} | {} |",
            threads,
            out.mops(),
            fmt_ns(p.p50),
            fmt_ns(p.p90),
            fmt_ns(p.p99),
            fmt_ns(p.p999),
            fmt_ns(out.hist.max()),
        );
    }

    let stats = store.stats();
    store.check_invariants();
    println!(
        "\n{} live keys, ~{:.1} MiB resident, avg key depth {:.1}",
        stats.key_count,
        stats.approx_bytes as f64 / (1024.0 * 1024.0),
        stats.avg_key_depth()
    );
}
