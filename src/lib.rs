//! Umbrella crate for the PathCAS reproduction; see the README and the
//! individual crates under `crates/` for the actual library surface.
pub use baselines;
pub use harness;
pub use kcas;
pub use mapapi;
pub use mcms;
pub use pathcas;
pub use pathcas_ds;
pub use replica;
pub use server;
pub use shard;
pub use stm;
pub use workload;
